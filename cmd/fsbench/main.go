// Command fsbench regenerates every table and figure of the paper's
// evaluation (§4) against the simulated kernels:
//
//	fsbench figure3    production-trace CPU utilization replay (+capacity)
//	fsbench figure4a   Nginx throughput vs cores
//	fsbench figure4b   HAProxy throughput vs cores
//	fsbench table1     lockstat contention counts per feature set
//	fsbench figure5    NIC delivery features: throughput, L3 miss, locality
//	fsbench all        everything above
//
// Results are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fastsocket/internal/experiment"
	"fastsocket/internal/fault"
	"fastsocket/internal/sim"
	"fastsocket/internal/sweep"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fsbench [flags] <experiment>...

experiments:
  figure3    24h production-trace replay: per-core CPU utilization box
             plots and the effective-capacity improvement (§4.2.1)
  figure4a   Nginx connections/s vs cores for base 2.6.32 / 3.13 /
             Fastsocket (§4.2.2)
  figure4b   HAProxy connections/s vs cores (§4.2.3)
  table1     lock contention counts per Fastsocket feature set (§4.2.4)
  figure5    packet-delivery configurations: throughput, L3 miss rate
             (5a) and local packet proportion (5b) (§4.2.4)
  longlived  keep-alive contrast validating §1's claim that long-lived
             connections do not hit the scalability wall
  synflood   spoofed SYN flood with and without tcp_syncookies (the
             "Security" production requirement of §1)
  ablation   each Fastsocket component's contribution in isolation
  offload    NIC offload ablation: TSO / GRO / IRQ coalescing on the
             bulk-transfer workload (per-byte event cost)
  losssweep  goodput + p99 connection latency vs wire loss rate,
             baseline vs Fastsocket (deterministic fault injection)
  overload   offered load ramped past capacity: accept throughput
             plateaus with syncookies, collapses without
  lifecycle  host crash/drain/restart and rolling worker restarts under
             live load: availability time-series, recovery time, and
             graceful-vs-hard verdicts (fixed scale; writes
             BENCH_lifecycle.json)
  all        run everything

flags:
`)
	flag.PrintDefaults()
}

func main() {
	var (
		warmupMS    = flag.Int("warmup", 400, "warmup per measurement (simulated ms)")
		windowMS    = flag.Int("window", 400, "measurement window (simulated ms)")
		conc        = flag.Int("concurrency", 500, "client connections in flight per server core")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		coresFlag   = flag.String("cores", "", "comma-separated core counts for figure4 (default 1,4,8,12,16,20,24)")
		quick       = flag.Bool("quick", false, "small windows for a fast smoke run")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "host workers for independent sweep points (1 = serial; results are identical)")
		shards      = flag.Int("shards", 0, "shard workers inside each simulation (0 = legacy single-loop engine; 1 = serial shard reference; results are identical at any value)")
		faultSpec   = flag.String("faults", "", "fault plan for ad-hoc robustness runs, e.g. loss=0.01,ring=256,allocfail=0.001 (applies to every experiment run)")
		offloadSpec = flag.String("offloads", "", "NIC offloads to enable on the machine under test: comma list of tso,gro,coalesce, or 'all' (applies to every experiment run; default none)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	o := experiment.Options{
		Warmup:             sim.Time(*warmupMS) * sim.Millisecond,
		Window:             sim.Time(*windowMS) * sim.Millisecond,
		ConcurrencyPerCore: *conc,
		Seed:               *seed,
	}
	if *faultSpec != "" {
		plan, err := fault.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(2)
		}
		o.Fault = &plan
	}
	if *offloadSpec != "" {
		off, err := parseOffloads(*offloadSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(2)
		}
		o.Offloads = off
	}
	o.Shards = *shards
	if *parallel > 1 {
		// Sweep points (kernel x cores grid cells, table columns) are
		// whole, independently-seeded simulations; internal/sweep runs
		// them on parallel host workers without changing any result.
		// With the shard engine active inside each point, the outer
		// sweep shrinks so the two layers share the host budget.
		o.Runner = sweep.Parallel{Workers: sweep.Budget(*parallel, *shards)}
	}
	f3 := experiment.Figure3Options{Seed: *seed}
	if *quick {
		o.Warmup = 15 * sim.Millisecond
		o.Window = 40 * sim.Millisecond
		o.ConcurrencyPerCore = 150
		f3.HourLen = 8 * sim.Millisecond
	}
	cores := parseCores(*coresFlag)

	run := map[string]func(){
		"figure3": func() {
			fmt.Print(experiment.Figure3(f3).Format())
		},
		"figure4a": func() {
			r := experiment.Figure4(experiment.WebBench, cores, o)
			fmt.Print(r.Format())
			fmt.Print(r.Chart())
		},
		"figure4b": func() {
			r := experiment.Figure4(experiment.ProxyBench, cores, o)
			fmt.Print(r.Format())
			fmt.Print(r.Chart())
		},
		"table1": func() {
			fmt.Print(experiment.Table1(o).Format())
		},
		"figure5": func() {
			fmt.Print(experiment.Figure5(o).Format())
		},
		"longlived": func() {
			fmt.Print(experiment.LongLived(24, 100, o).Format())
		},
		"synflood": func() {
			fmt.Print(experiment.SynFlood(0, o).Format())
		},
		"ablation": func() {
			fmt.Print(experiment.Ablation(o).Format())
		},
		"offload": func() {
			fmt.Print(experiment.OffloadAblation(o).Format())
		},
		"losssweep": func() {
			fmt.Print(experiment.LossSweep(nil, nil, o).Format())
		},
		"overload": func() {
			fmt.Print(experiment.Overload(o).Format())
		},
		"simperf": func() {
			fmt.Print(runSimperf())
		},
		"lifecycle": func() {
			fmt.Print(runLifecycleBench())
		},
	}
	order := []string{"figure3", "figure4a", "figure4b", "table1", "figure5", "longlived", "synflood", "ablation", "offload", "losssweep", "overload"}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		name = strings.ToLower(name)
		// figure5a and figure5b are two panels of one experiment.
		if name == "figure5a" || name == "figure5b" || name == "capacity" {
			switch name {
			case "capacity":
				name = "figure3"
			default:
				name = "figure5"
			}
		}
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "fsbench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		fn()
		fmt.Printf("(%s completed in %v wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// parseOffloads reads the -offloads spec.
func parseOffloads(s string) (experiment.Offloads, error) {
	var f experiment.Offloads
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return experiment.AllOffloads(), nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "tso":
			f.TSO = true
		case "gro":
			f.GRO = true
		case "coalesce", "coal":
			f.Coalesce = true
		case "":
		default:
			return f, fmt.Errorf("unknown offload %q (want tso, gro, coalesce or all)", part)
		}
	}
	return f, nil
}

func parseCores(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "fsbench: bad core count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
