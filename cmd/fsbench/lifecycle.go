package main

// lifecycle runs the host-lifecycle availability scenarios — whole-host
// crash vs graceful drain with cold restart, and the rolling restart of
// all eight listen_spawn workers in both flavours — at a fixed scale
// and seed, and writes BENCH_lifecycle.json. Unlike simperf, every
// number in the report is simulated (no wall-clock measurements), so
// the committed file regenerates byte-identically on any host; `make
// lifegate` relies on that to catch behavioural drift in the lifecycle
// plane the way the vet gate catches lock-graph drift.
//
// The run enforces the experiments' headline verdicts and aborts if
// any regresses:
//
//   - every scenario recovers to >= 99% of its pre-event baseline;
//   - a graceful drain aborts strictly fewer in-flight connections
//     than a hard crash with the same downtime, and actually finishes
//     connections inside its grace period;
//   - a rolling restart (1/8 of capacity out at any moment) never
//     looks like an outage: availability stays above 50% throughout.

import (
	"encoding/json"
	"fmt"
	"os"

	"fastsocket/internal/experiment"
	"fastsocket/internal/sim"
)

// The fixed lifecycle scale: large enough that the retry clocks
// (derived from the window) exercise backoff and budgets, small enough
// that `make lifegate` stays in seconds.
const (
	lifecycleWarmup = 40 * sim.Millisecond
	lifecycleWindow = 40 * sim.Millisecond
	lifecycleSeed   = 1
)

// lifecycleSliceJSON is one observation slice of a run's time-series.
type lifecycleSliceJSON struct {
	EndMs        float64 `json:"end_ms"`
	GoodputCPS   float64 `json:"goodput_cps"`
	Availability float64 `json:"availability"`
	Errors       uint64  `json:"errors"`
	Retries      uint64  `json:"retries"`
	P99Us        float64 `json:"p99_us"`
}

// lifecycleRunJSON is one scenario's summary plus its time-series.
type lifecycleRunJSON struct {
	Label           string  `json:"label"`
	BaselineCPS     float64 `json:"baseline_cps"`
	MinAvailability float64 `json:"min_availability"`
	// RecoveryMs is -1 when the run never recovered.
	RecoveryMs     float64              `json:"recovery_ms"`
	Aborted        uint64               `json:"aborted"`
	Drained        uint64               `json:"drained"`
	ClientTimeouts uint64               `json:"client_timeouts"`
	DeadSegs       uint64               `json:"dead_segs"`
	Restarts       uint64               `json:"restarts"`
	Slices         []lifecycleSliceJSON `json:"slices"`
}

type lifecycleExperimentJSON struct {
	Title string             `json:"title"`
	Cores int                `json:"cores"`
	Runs  []lifecycleRunJSON `json:"runs"`
}

type lifecycleReport struct {
	Note        string                    `json:"note"`
	Experiments []lifecycleExperimentJSON `json:"experiments"`
}

func lifecycleRunJSONOf(run experiment.LifecycleRun) lifecycleRunJSON {
	r := lifecycleRunJSON{
		Label:           run.Label,
		BaselineCPS:     roundTo(run.BaselineCPS, 0),
		MinAvailability: roundTo(run.MinAvailability, 4),
		RecoveryMs:      -1,
		Aborted:         run.Aborted,
		Drained:         run.Drained,
		ClientTimeouts:  run.ClientTimeouts,
		DeadSegs:        run.DeadSegs,
		Restarts:        run.Restarts,
	}
	if run.RecoveryTime >= 0 {
		r.RecoveryMs = roundTo(float64(run.RecoveryTime)/float64(sim.Millisecond), 3)
	}
	for _, s := range run.Slices {
		r.Slices = append(r.Slices, lifecycleSliceJSON{
			EndMs:        roundTo(float64(s.End)/float64(sim.Millisecond), 3),
			GoodputCPS:   roundTo(s.GoodputCPS, 0),
			Availability: roundTo(s.Availability, 4),
			Errors:       s.Errors,
			Retries:      s.Retries,
			P99Us:        roundTo(float64(s.P99)/float64(sim.Microsecond), 1),
		})
	}
	return r
}

// lifecycleEnforce aborts on any regression of a scenario pair's
// verdicts. drain and crash index the gracefully- and hard-stopped run
// inside res.Runs.
func lifecycleEnforce(res experiment.LifecycleResult, drain, crash int, minAvail float64) {
	for _, run := range res.Runs {
		if run.RecoveryTime < 0 {
			fmt.Fprintf(os.Stderr, "fsbench: lifecycle %q/%q never recovered to >=%.0f%% of baseline\n",
				res.Title, run.Label, 100*experiment.RecoveryAvailability)
			os.Exit(1)
		}
		if run.MinAvailability < minAvail {
			fmt.Fprintf(os.Stderr, "fsbench: lifecycle %q/%q dipped to %.1f%% availability (floor %.0f%%)\n",
				res.Title, run.Label, 100*run.MinAvailability, 100*minAvail)
			os.Exit(1)
		}
	}
	d, c := res.Runs[drain], res.Runs[crash]
	if d.Aborted >= c.Aborted {
		fmt.Fprintf(os.Stderr, "fsbench: lifecycle %q: graceful %q aborted %d >= hard %q %d; the grace period saved nothing\n",
			res.Title, d.Label, d.Aborted, c.Label, c.Aborted)
		os.Exit(1)
	}
	if d.Drained == 0 {
		fmt.Fprintf(os.Stderr, "fsbench: lifecycle %q: %q finished no connections inside the grace period\n",
			res.Title, d.Label)
		os.Exit(1)
	}
}

// runLifecycleBench executes both lifecycle experiments at the fixed
// scale, enforces the verdicts, and writes BENCH_lifecycle.json.
func runLifecycleBench() string {
	o := experiment.Options{
		Warmup: lifecycleWarmup,
		Window: lifecycleWindow,
		Seed:   lifecycleSeed,
	}
	crash := experiment.CrashRecovery(o)
	rolling := experiment.RollingRestart(o)
	// CrashRecovery: run 0 is the hard crash, run 1 the drain. A
	// whole-host outage legitimately drops availability to ~0 while
	// down, so no dip floor there; a rolling restart must stay well
	// clear of one.
	lifecycleEnforce(crash, 1, 0, 0)
	lifecycleEnforce(rolling, 0, 1, 0.5)

	rep := lifecycleReport{
		Note: fmt.Sprintf("host lifecycle availability scenarios at fixed scale: warmup %v, window %v, seed %d; every value is simulated (no wall-clock), so this file regenerates byte-identically on any host — `make lifegate` enforces the recovery/drain-vs-crash verdicts and this stability", lifecycleWarmup, lifecycleWindow, lifecycleSeed),
	}
	for _, res := range []experiment.LifecycleResult{crash, rolling} {
		e := lifecycleExperimentJSON{Title: res.Title, Cores: res.Cores}
		for _, run := range res.Runs {
			e.Runs = append(e.Runs, lifecycleRunJSONOf(run))
		}
		rep.Experiments = append(rep.Experiments, e)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsbench: lifecycle encode: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_lifecycle.json", out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fsbench: lifecycle write: %v\n", err)
		os.Exit(1)
	}
	return crash.Format() + rolling.Format()
}
