// Proxy example: the paper's HAProxy scenario (§4.2.3) showing what
// Receive Flow Deliver does for *active* connections. The same
// 16-core Fastsocket machine runs with three packet-delivery
// configurations; watch the local-packet proportion, software steer
// count, and L3 miss rate change.
package main

import (
	"flag"
	"fmt"

	"fastsocket/internal/app"
	"fastsocket/internal/kernel"
	"fastsocket/internal/netproto"
	"fastsocket/internal/nic"
	"fastsocket/internal/sim"
)

func main() {
	cores := flag.Int("cores", 16, "CPU cores of the simulated proxy")
	dur := flag.Int("ms", 100, "simulated milliseconds per configuration")
	flag.Parse()

	configs := []struct {
		name    string
		nicMode nic.Mode
		rfd     bool
	}{
		{"RSS only (no RFD)", nic.RSS, false},
		{"RFD + RSS (software steering)", nic.RSS, true},
		{"RFD + FDir Perfect-Filtering", nic.FDirPerfect, true},
	}

	for _, cfgRow := range configs {
		feat := kernel.Features{VFS: true, LocalListen: true}
		if cfgRow.rfd {
			feat.RFD = true
			feat.LocalEst = true // requires complete locality (§3.2.2)
		}
		loop := sim.NewLoop()
		netw := app.NewNetwork(loop, 20*sim.Microsecond)
		k := kernel.New(loop, kernel.Config{
			Cores:   *cores,
			Mode:    kernel.Fastsocket,
			Feat:    feat,
			NICMode: cfgRow.nicMode,
		})
		netw.AttachKernel(k)

		backendAddr := netproto.Addr{IP: netproto.IPv4(10, 3, 0, 1), Port: 80}
		app.NewBackend(loop, netw, app.BackendConfig{Addr: backendAddr})
		px := app.NewProxy(k, app.ProxyConfig{Backends: []netproto.Addr{backendAddr}})
		px.Start()

		cli := app.NewHTTPLoad(loop, netw, app.HTTPLoadConfig{
			Targets:     []netproto.Addr{{IP: k.IPs()[0], Port: 80}},
			Concurrency: 300 * *cores,
		})
		cli.Start()

		warm := 20 * sim.Millisecond
		loop.RunUntil(warm)
		base := k.Stats()
		cacheBase := k.Cache().Stats()
		completed := cli.Completed
		window := sim.Time(*dur) * sim.Millisecond
		loop.RunUntil(warm + window)

		st := k.Stats()
		localPct := 0.0
		if d := st.ActiveIn - base.ActiveIn; d > 0 {
			localPct = 100 * float64(st.ActiveLocal-base.ActiveLocal) / float64(d)
		}
		miss := k.Cache().Stats().Sub(cacheBase)
		fmt.Printf("== %s\n", cfgRow.name)
		fmt.Printf("   throughput:            %8.0f proxied conns/s\n",
			float64(cli.Completed-completed)/window.Seconds())
		fmt.Printf("   local active packets:  %7.1f%% (delivered straight to the owning core)\n", localPct)
		fmt.Printf("   software steers:       %8d\n", st.SoftSteers-base.SoftSteers)
		fmt.Printf("   L3 miss rate:          %7.1f%%\n", 100*miss.MissRate())
		fmt.Printf("   proxy errors:          %8d\n\n", px.Errors)
	}
}
