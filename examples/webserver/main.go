// Webserver example: the paper's Nginx scenario (§4.2.2) on all
// three kernels side by side. For each kernel the same machine size
// and offered load are used; the output shows throughput, CPU
// utilization balance, and which locks hurt.
package main

import (
	"flag"
	"fmt"

	"fastsocket/internal/app"
	"fastsocket/internal/cpu"
	"fastsocket/internal/kernel"
	"fastsocket/internal/netproto"
	"fastsocket/internal/sim"
	"fastsocket/internal/stats"
)

func main() {
	cores := flag.Int("cores", 16, "CPU cores of the simulated server")
	dur := flag.Int("ms", 100, "simulated milliseconds per kernel")
	flag.Parse()

	specs := []struct {
		name string
		mode kernel.Mode
		feat kernel.Features
	}{
		{"base-2.6.32", kernel.Base2632, kernel.Features{}},
		{"linux-3.13", kernel.Linux313, kernel.Features{}},
		{"fastsocket", kernel.Fastsocket, kernel.FullFastsocket()},
	}

	for _, spec := range specs {
		loop := sim.NewLoop()
		netw := app.NewNetwork(loop, 20*sim.Microsecond)
		ips := []netproto.IP{
			netproto.IPv4(10, 1, 0, 1), netproto.IPv4(10, 1, 0, 2),
			netproto.IPv4(10, 1, 0, 3), netproto.IPv4(10, 1, 0, 4),
		}
		k := kernel.New(loop, kernel.Config{
			Cores: *cores, Mode: spec.mode, Feat: spec.feat, IPs: ips,
		})
		netw.AttachKernel(k)
		srv := app.NewWebServer(k, app.WebServerConfig{})
		srv.Start()
		var targets []netproto.Addr
		for _, ip := range ips {
			targets = append(targets, netproto.Addr{IP: ip, Port: 80})
		}
		cli := app.NewHTTPLoad(loop, netw, app.HTTPLoadConfig{
			Targets:     targets,
			Concurrency: 300 * *cores,
		})
		cli.Start()

		// Warm up, then measure.
		warm := 20 * sim.Millisecond
		loop.RunUntil(warm)
		completed := cli.Completed
		busy := k.Machine().BusySnapshot()
		window := sim.Time(*dur) * sim.Millisecond
		loop.RunUntil(warm + window)

		cps := float64(cli.Completed-completed) / window.Seconds()
		util := stats.BoxOf(cpu.Utilization(busy, k.Machine().BusySnapshot(), window))
		fmt.Printf("== %-12s %8.0f conns/s  util %s\n", spec.name, cps, util)
		fmt.Println("   top contended locks:")
		for _, row := range k.LockStats() {
			if row.Contended > 0 {
				fmt.Printf("   %-12s contended %8d  wait %v\n", row.Name, row.Contended, row.WaitTime)
			}
		}
		fmt.Println()
	}
}
