// Production example: the Figure 3 scenario — two identical 8-core
// HAProxy servers behind a load balancer, one on the baseline kernel
// and one on Fastsocket, replaying a compressed 24-hour Weibo-shaped
// diurnal traffic curve. The output is the per-hour per-core CPU
// utilization spread and the effective-capacity computation (§4.2.1).
package main

import (
	"flag"
	"fmt"

	"fastsocket/internal/experiment"
	"fastsocket/internal/sim"
)

func main() {
	hourMS := flag.Int("hour", 25, "simulated milliseconds per compressed hour")
	peak := flag.Float64("peak", 0, "peak-hour connection rate per server (0 = default)")
	flag.Parse()

	r := experiment.Figure3(experiment.Figure3Options{
		HourLen:  sim.Time(*hourMS) * sim.Millisecond,
		PeakRate: *peak,
	})
	fmt.Print(r.Format())

	fmt.Println("\nReading the result like the paper does:")
	fmt.Printf("- The Fastsocket server's cores stay tightly balanced (spread %.1f points at the busy hour)\n",
		100*r.Hours[r.BusyHour].Fast.Spread())
	fmt.Printf("- The baseline server's cores diverge (spread %.1f points), and its hottest core\n",
		100*r.Hours[r.BusyHour].Base.Spread())
	fmt.Printf("  determines when the SLA forces more capacity to be added.\n")
}
