// Attack example: the §3.3 security scenario. Receive Flow Deliver
// steers "active incoming" packets by a bit-wise hash of the
// destination port. An attacker who knows the plain hash —
// hash(p) = p & (roundUpPow2(n)-1) — can spoof packets (well-known
// source port, crafted destination ports sharing low bits) so that
// every one of them is steered to the same CPU core, overloading it.
//
// The paper's mitigation is "randomly selecting the bits used in the
// operation". This example mounts the attack against both
// configurations and shows the per-core distribution of the
// attacker's packets.
package main

import (
	"flag"
	"fmt"
	"strings"

	"fastsocket/internal/core"
	"fastsocket/internal/netproto"
	"fastsocket/internal/sim"
)

func main() {
	cores := flag.Int("cores", 16, "CPU cores of the target machine")
	packets := flag.Int("packets", 4096, "spoofed packets the attacker sends")
	seed := flag.Uint64("seed", 2026, "secret seed for the randomized bit selection")
	flag.Parse()

	plain := core.NewRFD(*cores, 0)
	hardened := core.NewRFD(*cores, 0)
	hardened.SelectBits(sim.NewRand(*seed))

	// The attacker crafts destination ports whose low bits are all
	// zero — with the plain hash, every packet steers to core 0.
	rng := sim.NewRand(1)
	attack := make([]*netproto.Packet, 0, *packets)
	for i := 0; i < *packets; i++ {
		port := netproto.Port(32768 + (rng.Intn(1500) << 4))
		attack = append(attack, &netproto.Packet{
			Src: netproto.Addr{IP: netproto.IPv4(6, 6, 6, 6), Port: 80}, // spoofed "active incoming"
			Dst: netproto.Addr{IP: netproto.IPv4(10, 1, 0, 1), Port: port},
		})
	}

	count := func(r *core.RFD) []int {
		hist := make([]int, *cores)
		for _, p := range attack {
			if target, active := r.Steer(p, nil); active {
				hist[target]++
			}
		}
		return hist
	}

	fmt.Printf("Attacker sends %d spoofed packets with crafted destination ports (low bits fixed).\n\n", *packets)
	show := func(name string, hist []int) {
		max := 0
		for _, n := range hist {
			if n > max {
				max = n
			}
		}
		fmt.Printf("%s\n", name)
		for c, n := range hist {
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", n*50/max)
			}
			fmt.Printf("  core %2d %6d %s\n", c, n, bar)
		}
		fmt.Println()
	}
	plainHist := count(plain)
	hardHist := count(hardened)
	show("Plain hash  —  hash(p) = p & mask (attacker pins one core):", plainHist)
	show(fmt.Sprintf("Randomized bit selection (secret bits %v):", hardened.Bits()), hardHist)

	spread := func(hist []int) int {
		n := 0
		for _, v := range hist {
			if v > 0 {
				n++
			}
		}
		return n
	}
	fmt.Printf("Cores hit: plain %d/%d, randomized %d/%d.\n", spread(plainHist), *cores, spread(hardHist), *cores)
	fmt.Println("Against the plain hash the attacker chooses the victim core. With secret")
	fmt.Println("bit selection the mapping is unpredictable: the flood lands on whichever")
	fmt.Println("cores the secret bits dictate (more of them the more secret bits escape")
	fmt.Println("the attacker's fixed pattern), and the attacker cannot aim at all.")
}
