// Quickstart: boot a Fastsocket kernel, serve short-lived HTTP
// connections for 100 simulated milliseconds, and print what
// happened. This is the smallest complete use of the public pieces:
// a sim.Loop, a kernel.Kernel, an app.Network, an application model
// and a load generator.
package main

import (
	"fmt"

	"fastsocket/internal/app"
	"fastsocket/internal/kernel"
	"fastsocket/internal/netproto"
	"fastsocket/internal/sim"
)

func main() {
	// One event loop drives everything; all times are simulated.
	loop := sim.NewLoop()
	netw := app.NewNetwork(loop, 20*sim.Microsecond)

	// An 8-core machine running the full Fastsocket kernel.
	k := kernel.New(loop, kernel.Config{
		Cores: 8,
		Mode:  kernel.Fastsocket,
		Feat:  kernel.FullFastsocket(),
	})
	netw.AttachKernel(k)

	// An Nginx-like server: one worker per core, 1200-byte cached
	// response, connection closed after each request.
	srv := app.NewWebServer(k, app.WebServerConfig{})
	srv.Start()

	// An http_load-like client keeping 2000 connections in flight.
	cli := app.NewHTTPLoad(loop, netw, app.HTTPLoadConfig{
		Targets:     []netproto.Addr{{IP: k.IPs()[0], Port: 80}},
		Concurrency: 2000,
	})
	cli.Start()

	loop.RunUntil(100 * sim.Millisecond)

	fmt.Printf("simulated %v on %d cores (%s kernel)\n",
		loop.Now(), k.Config().Cores, k.Config().Mode)
	fmt.Printf("requests served:   %d (%.0f connections/s)\n",
		srv.Served, float64(cli.Completed)/loop.Now().Seconds())
	fmt.Printf("client errors:     %d\n", cli.Errors)
	fmt.Printf("fetch latency:     %v\n", cli.Latencies)
	fmt.Printf("packets in/out:    %d/%d\n", k.Stats().PacketsIn, k.Stats().PacketsOut)
	fmt.Printf("per-worker spread: %v\n", srv.PerWorkerServed)
	fmt.Println("\nlockstat:")
	fmt.Print(k.FormatLockStats())
}
