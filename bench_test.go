// Macro-benchmarks: one per table/figure of the paper, plus ablation
// benches for the design choices DESIGN.md calls out. These wrap the
// experiment harness; the interesting output is the custom metrics
// (connections/s, locality, miss rates), not ns/op.
//
// Run with: go test -bench=. -benchmem
package fastsocket_test

import (
	"testing"

	"fastsocket/internal/app"
	"fastsocket/internal/experiment"
	"fastsocket/internal/kernel"
	"fastsocket/internal/netproto"
	"fastsocket/internal/nic"
	"fastsocket/internal/sim"
)

// benchOptions keeps bench iterations affordable while reaching
// steady state.
func benchOptions() experiment.Options {
	return experiment.Options{
		Warmup:             15 * sim.Millisecond,
		Window:             40 * sim.Millisecond,
		ConcurrencyPerCore: 150,
	}
}

// BenchmarkFigure4a regenerates the Nginx throughput-vs-cores curves.
func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure4(experiment.WebBench, []int{1, 12, 24}, benchOptions())
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.CPS["fastsocket"], "fastsocket-cps")
		b.ReportMetric(last.CPS["base-2.6.32"], "base-cps")
		b.ReportMetric(r.Speedup["fastsocket"], "fastsocket-speedup-x")
	}
}

// BenchmarkFigure4b regenerates the HAProxy curves.
func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure4(experiment.ProxyBench, []int{1, 24}, benchOptions())
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.CPS["fastsocket"], "fastsocket-cps")
		b.ReportMetric(last.CPS["base-2.6.32"], "base-cps")
	}
}

// BenchmarkTable1 regenerates the lockstat table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table1(benchOptions())
		b.ReportMetric(float64(r.Counts["dcache_lock"][0]), "baseline-dcache-contended-60s")
		b.ReportMetric(float64(r.Counts["slock"][0]), "baseline-slock-contended-60s")
	}
}

// BenchmarkFigure5 regenerates the packet-delivery experiment.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure5(benchOptions())
		for _, row := range r.Rows {
			switch row.Label {
			case "RSS":
				b.ReportMetric(row.LocalPct, "rss-local-pct")
				b.ReportMetric(row.L3MissPct, "rss-l3miss-pct")
			case "RFD+FDir_Perfect":
				b.ReportMetric(row.LocalPct, "perfect-local-pct")
				b.ReportMetric(row.Throughput, "perfect-cps")
			}
		}
	}
}

// BenchmarkFigure3 regenerates the production-trace replay.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Figure3(experiment.Figure3Options{HourLen: 5 * sim.Millisecond})
		b.ReportMetric(r.CapacityGainPct, "capacity-gain-pct")
		b.ReportMetric(r.CPUSavingPct, "cpu-saving-pct")
	}
}

// --- Ablations: one Fastsocket component at a time -------------------

func ablationSpec(label string, feat kernel.Features) experiment.KernelSpec {
	mode := kernel.Fastsocket
	if feat == (kernel.Features{}) {
		mode = kernel.Base2632
	}
	return experiment.KernelSpec{Label: label, Mode: mode, Feat: feat}
}

// BenchmarkAblationVFS isolates the Fastsocket-aware VFS fast path.
func BenchmarkAblationVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := experiment.Measure(ablationSpec("no-vfs", kernel.Features{}), experiment.WebBench, 24, benchOptions())
		on := experiment.Measure(ablationSpec("vfs", kernel.Features{VFS: true}), experiment.WebBench, 24, benchOptions())
		b.ReportMetric(on.Throughput, "with-V-cps")
		b.ReportMetric(off.Throughput, "without-V-cps")
	}
}

// BenchmarkAblationLocalListen isolates the Local Listen Table.
func BenchmarkAblationLocalListen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := experiment.Measure(ablationSpec("V", kernel.Features{VFS: true}), experiment.WebBench, 24, benchOptions())
		on := experiment.Measure(ablationSpec("VL", kernel.Features{VFS: true, LocalListen: true}), experiment.WebBench, 24, benchOptions())
		b.ReportMetric(on.Throughput, "with-L-cps")
		b.ReportMetric(off.Throughput, "without-L-cps")
	}
}

// BenchmarkAblationRFD isolates Receive Flow Deliver on the
// active-connection workload.
func BenchmarkAblationRFD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := experiment.Measure(ablationSpec("VL", kernel.Features{VFS: true, LocalListen: true}), experiment.ProxyBench, 24, benchOptions())
		on := experiment.Measure(ablationSpec("VLRE", kernel.FullFastsocket()), experiment.ProxyBench, 24, benchOptions())
		b.ReportMetric(on.Throughput, "with-RE-cps")
		b.ReportMetric(off.Throughput, "without-RE-cps")
		b.ReportMetric(on.LocalPct, "with-RE-localpct")
	}
}

// BenchmarkSyscallCostAblation shows where system-call batching (the
// paper's future work, §5) would help: halving fixed syscall entry
// costs and re-measuring.
func BenchmarkSyscallCostAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		normal := experiment.Measure(ablationSpec("fs", kernel.FullFastsocket()), experiment.WebBench, 24, o)
		b.ReportMetric(normal.Throughput, "normal-cps")

		// Batched: halve the per-call fixed costs.
		costs := kernel.DefaultCosts()
		costs.Accept /= 2
		costs.Recv /= 2
		costs.Send /= 2
		costs.Close /= 2
		costs.Epoll.Wait /= 2
		m := measureWithCosts(costs, o)
		b.ReportMetric(m, "batched-cps")
	}
}

// measureWithCosts runs the web bench at 24 cores with custom costs.
func measureWithCosts(costs *kernel.Costs, o experiment.Options) float64 {
	loop := sim.NewLoop()
	netw := app.NewNetwork(loop, 20*sim.Microsecond)
	k := kernel.New(loop, kernel.Config{
		Cores: 24,
		Mode:  kernel.Fastsocket,
		Feat:  kernel.FullFastsocket(),
		Costs: costs,
	})
	netw.AttachKernel(k)
	srv := app.NewWebServer(k, app.WebServerConfig{})
	srv.Start()
	cli := app.NewHTTPLoad(loop, netw, app.HTTPLoadConfig{
		Targets:     []netproto.Addr{{IP: k.IPs()[0], Port: 80}},
		Concurrency: o.ConcurrencyPerCore * 24,
	})
	cli.Start()
	loop.RunUntil(o.Warmup)
	start := cli.Completed
	loop.RunUntil(o.Warmup + o.Window)
	return float64(cli.Completed-start) / o.Window.Seconds()
}

// BenchmarkNICModes sweeps the Figure 5 NIC configurations as
// individual benchmark cases.
func BenchmarkNICModes(b *testing.B) {
	cases := []struct {
		name string
		mode nic.Mode
		rfd  bool
	}{
		{"RSS", nic.RSS, false},
		{"RFD_RSS", nic.RSS, true},
		{"FDirATR", nic.FDirATR, false},
		{"RFD_FDirPerfect", nic.FDirPerfect, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				feat := kernel.Features{VFS: true, LocalListen: true}
				if c.rfd {
					feat.RFD = true
					feat.LocalEst = true
				}
				spec := experiment.KernelSpec{
					Label: c.name, Mode: kernel.Fastsocket, Feat: feat,
					NICMode: c.mode, ATRSampleRate: 2,
				}
				m := experiment.Measure(spec, experiment.ProxyBench, 16, benchOptions())
				b.ReportMetric(m.Throughput, "cps")
				b.ReportMetric(m.LocalPct, "local-pct")
				b.ReportMetric(100*m.L3MissRate, "l3miss-pct")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: events
// and simulated connections processed per wall second (useful when
// sizing experiment windows).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop()
		netw := app.NewNetwork(loop, 20*sim.Microsecond)
		k := kernel.New(loop, kernel.Config{Cores: 8, Mode: kernel.Fastsocket, Feat: kernel.FullFastsocket()})
		netw.AttachKernel(k)
		srv := app.NewWebServer(k, app.WebServerConfig{})
		srv.Start()
		cli := app.NewHTTPLoad(loop, netw, app.HTTPLoadConfig{
			Targets:     []netproto.Addr{{IP: k.IPs()[0], Port: 80}},
			Concurrency: 1000,
		})
		cli.Start()
		loop.RunUntil(50 * sim.Millisecond)
		b.ReportMetric(float64(loop.Fired()), "events")
		b.ReportMetric(float64(cli.Completed), "sim-conns")
	}
}
