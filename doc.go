// Package fastsocket is a reproduction, in simulation, of
// "Scalable Kernel TCP Design and Implementation for Short-Lived
// Connections" (ASPLOS 2016).
//
// The module contains a deterministic discrete-event model of a
// multicore machine running a kernel TCP stack in three behaviour
// profiles (Linux 2.6.32, Linux 3.13 with SO_REUSEPORT, and
// Fastsocket), the benchmark applications the paper evaluates
// (an Nginx-like web server and an HAProxy-like proxy), and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// Start with the README, then examples/quickstart, then cmd/fsbench.
package fastsocket
