# Convenience targets; everything is plain `go` underneath.

.PHONY: all build lint vet allocgate fsmgate shardgate offloadgate lifegate test bench bench-go figures quick-figures faults examples clean

all: build test

build:
	go build ./...

# Static checks: formatting, vet, and the repo's own fslint analyzer
# (determinism, lock discipline, and unit hygiene — see DESIGN.md).
lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt: files need formatting:"; echo "$$fmt"; exit 1; fi
	go vet ./...
	go run ./cmd/fslint ./...

# Typed whole-program analysis (fsvet): interprocedural determinism,
# reachability, units, lock order, charge accounting and pooled-handle
# escape checks, plus the static<->runtime lockdep cross-check against
# the committed experiment mix. Fails on any unbaselined finding or on
# an observed lock-order edge the static graph missed. Refreshes the
# committed observed graph and timing record.
vet:
	go run ./cmd/fsvet -root . -baseline .fsvet-baseline.json \
		-lockdep-cross-check -write-observed LOCKGRAPH_observed.json \
		-bench-out BENCH_vet.json

# Allocation gate: the fsvet alloc pass checks every hot-path function
# against the committed budget (.fsvet-allocbudget.json), then the
# runtime cross-check measures actual allocs/event (macro run) and
# allocs/op (bare engine) against the budget's ceilings. Regenerate the
# budget after deliberate changes with:
#   go run ./cmd/fsvet -write-allocbudget
# (ceilings, notes and corpus fixture entries are preserved).
allocgate:
	go run ./cmd/fsvet -root . -alloc-cross-check -bench-out BENCH_allocgate.json

# FSM gate: the fsvet fsm pass statically extracts every TCP
# state-transition site and diffs the relation against the committed
# spec (internal/vet/fsmspec.go); the cross-check then replays the fsm
# experiment mix under the runtime transition tracer and fails if any
# observed transition has no static site (analyzer bug) or the mix
# covers < 90% of the spec's non-defensive edges. Refreshes the
# committed observed matrix (FSMGRAPH_observed.json) — the mix is
# deterministic, so the file only moves when TCP behaviour does.
fsmgate:
	go run ./cmd/fsvet -root . -baseline .fsvet-baseline.json \
		-fsm-cross-check -write-fsmgraph FSMGRAPH_observed.json

# Shard gate: the conservative-lookahead engine's equality suite under
# the race detector — engine unit tests (parallel == serial traces,
# deterministic Pending/Fired aggregation) plus the experiment digest
# suite (Figure 4/5, Table 1, loss sweep, overload ramp bit-identical
# between Shards=1 and Shards>1, with mailbox traffic asserted
# non-vacuous).
shardgate:
	go test -race ./internal/shard
	go test -race -run 'TestShardDigest' ./internal/experiment

# Offload gate: the NIC offload model's invariants. GRO merge boundary
# and IRQ-coalescing timer unit tests, the TSO fault-granularity
# equivalence (an armed fault plane draws identical per-MSS decisions
# whether or not the wire carries super-segments), the offload digest
# suite under the race detector (legacy == sharded, offloads-off
# inert), and the fsvet runtime alloc cross-check with every offload
# enabled against the committed macro ceiling.
offloadgate:
	go test -run 'TestGRO|TestCoalesce' ./internal/kernel
	go test -run 'TestTSO' ./internal/app
	go test -race -run 'TestOffload|TestShardDigestOffload' ./internal/experiment
	go run ./cmd/fsvet -root . -alloc-cross-check -offloads

# Lifecycle gate: the host lifecycle plane's invariants. The app-layer
# crash/drain/restart suite under the race detector, then the fixed
# fsbench lifecycle scenarios with their built-in verdict enforcement
# (every scenario recovers to >=99% of baseline, a graceful drain
# aborts strictly fewer connections than a hard crash, a rolling
# restart never looks like an outage). Refreshes the committed
# BENCH_lifecycle.json — every value in it is simulated, so the file
# only moves when lifecycle behaviour does.
lifegate:
	go test -race -run 'TestLifecycle' ./internal/app
	go run ./cmd/fsbench lifecycle

test: lint vet allocgate fsmgate lifegate
	go test ./...

# Full test run recorded to test_output.txt (what CI would archive).
test-record:
	go test -count=1 ./... 2>&1 | tee test_output.txt

# Benchmark the simulator engine itself and refresh the committed
# perf record: writes BENCH_simperf.json with events/sec, ns/event and
# allocs/event for a fixed macro run plus bare-loop schedule/fire and
# schedule/cancel churn. Diff the file across commits to see how
# engine changes move throughput.
bench:
	go run ./cmd/fsbench simperf

# Any conventional go test benchmarks, archived to bench_output.txt.
bench-go:
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure of the paper (minutes).
figures:
	go run ./cmd/fsbench all

quick-figures:
	go run ./cmd/fsbench -quick all

# Smoke-run the fault-injection experiments (loss sweep + overload
# ramp) with small windows; exercises the whole fault plane end to end.
faults:
	go run ./cmd/fsbench -quick losssweep overload
	go run ./cmd/fsbench -quick -faults loss=0.01,ring=256,allocfail=0.001 figure4a

examples:
	go run ./examples/quickstart
	go run ./examples/webserver -cores 8 -ms 50
	go run ./examples/proxy -cores 8 -ms 50
	go run ./examples/production -hour 10
	go run ./examples/attack

clean:
	rm -f test_output.txt bench_output.txt sim.pcap
